/// Shared "meta" header for bench JSON artifacts (BENCH_table1.json,
/// bench_su4 --json): records the environment a baseline was produced
/// under — executor thread count, whether the Z3 backend was compiled in,
/// build type, and the solver budget — so a regenerated file carries
/// enough context to interpret wall-time drift. Purely informational:
/// consumers that scan for top-level fields must keep those fields
/// *before* the meta object (bench/sat_smoke_main.cpp's scanner finds the
/// first textual occurrence of a key).

#pragma once

#include <ostream>

#include "exact/shard_executor.hpp"
#include "reason/engine.hpp"

namespace qxmap::bench {

#ifdef NDEBUG
inline constexpr const char* kBuildType = "release";
#else
inline constexpr const char* kBuildType = "debug";
#endif

/// Writes `"meta": {...}` (no trailing comma/newline) at `indent` spaces.
inline void write_meta_json(std::ostream& os, long long budget_ms, int indent = 2) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "\"meta\": {\"threads\": " << exact::ShardExecutor::instance().num_threads()
     << ", \"z3\": " << (reason::z3_available() ? "true" : "false") << ", \"build_type\": \""
     << kBuildType << "\", \"budget_ms\": " << budget_ms << "}";
}

}  // namespace qxmap::bench
