/// \file service_main.cpp
/// Throughput benchmark for the mapping service (api/service.hpp): replays
/// Table-1 rows through `MappingService` cold (every request solves) and
/// warm (every request hits the result cache) and reports the per-request
/// latency distribution of both passes plus the warm/cold speedup.
///
/// Usage: bench_service [--smoke] [--rows N] [--repeat N] [--budget-ms N]
///                      [--min-speedup X]
///   --smoke         CI mode: assert that (a) the warm pass spawns zero
///                   shard work on the executor (pure cache traffic),
///                   (b) warm median latency beats cold median by
///                   --min-speedup, and (c) tracing stays disabled with
///                   zero trace events recorded during the warm loop —
///                   the speedup floor doubles as the disabled-overhead
///                   gate (docs/observability.md); exit 1 otherwise
///   --rows N        how many of the smallest Table-1 rows to replay
///                   (default 6)
///   --repeat N      warm requests per row (default 5)
///   --budget-ms N   exact-solver budget per request (default 30000)
///   --min-speedup X cold/warm median ratio the smoke mode requires
///                   (default 10; the acceptance floor of the service PR)
///
/// Like bench_sat_smoke this is a plain CLI — no Google Benchmark
/// dependency — so the test build can register it in the quick gate.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "api/service.hpp"
#include "arch/architectures.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "exact/shard_executor.hpp"
#include "obs/trace.hpp"

namespace {

using namespace qxmap;
using Clock = std::chrono::steady_clock;

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

struct Args {
  bool smoke = false;
  int rows = 6;
  int repeat = 5;
  long long budget_ms = 30000;
  double min_speedup = 10.0;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("bench_service: missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--smoke") {
      a.smoke = true;
    } else if (arg == "--rows") {
      a.rows = std::stoi(next());
    } else if (arg == "--repeat") {
      a.repeat = std::stoi(next());
    } else if (arg == "--budget-ms") {
      a.budget_ms = std::stoll(next());
    } else if (arg == "--min-speedup") {
      a.min_speedup = std::stod(next());
    } else {
      throw std::runtime_error("bench_service: unknown argument: " + arg);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);

    // The smallest rows by symbolic-instance size (qubits, then CNOTs):
    // service traffic is dominated by small repeated requests, and the
    // smoke gate must stay fast on a loaded 1-core CI runner.
    std::vector<bench::Table1Benchmark> rows = bench::table1_benchmarks();
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       if (a.n != b.n) return a.n < b.n;
                       return a.cnot < b.cnot;
                     });
    if (static_cast<int>(rows.size()) > args.rows) {
      rows.resize(static_cast<std::size_t>(args.rows));
    }

    // Disabled-overhead gate: the latency numbers below measure the
    // instrumented hot path with tracing off, so force the disabled mode
    // regardless of QXMAP_TRACE and verify nothing gets recorded. A span
    // leak here would show up twice — a nonzero event delta and a warm
    // median too slow for the --min-speedup floor.
    obs::TraceRecorder::set_enabled(false);
    const std::uint64_t trace_events_before = obs::TraceRecorder::instance().event_count();

    const auto cm = arch::ibm_qx4();
    MapOptions options;
    options.exact.use_subsets = true;
    options.exact.budget = std::chrono::milliseconds(args.budget_ms);

    api::MappingService service(64);
    std::vector<double> cold_ms;
    std::vector<double> warm_ms;

    std::cout << "bench_service: " << rows.size() << " Table-1 rows on qx4, "
              << args.repeat << " warm repeats\n";
    for (const auto& row : rows) {
      const Circuit circuit = row.build();
      const auto t0 = Clock::now();
      const auto cold = service.map(circuit, cm, options);
      const double cold_t = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      cold_ms.push_back(cold_t);
      if (cold.from_cache) throw std::runtime_error("bench_service: cold request hit the cache");

      const std::uint64_t shard_work_before = exact::ShardExecutor::instance().stats().tasks_executed;
      double row_warm = 0.0;
      for (int r = 0; r < args.repeat; ++r) {
        const auto t1 = Clock::now();
        const auto warm = service.map(circuit, cm, options);
        const double warm_t =
            std::chrono::duration<double, std::milli>(Clock::now() - t1).count();
        warm_ms.push_back(warm_t);
        row_warm += warm_t;
        if (!warm.from_cache) throw std::runtime_error("bench_service: warm request missed");
        if (warm.cost_f != cold.cost_f || !(warm.mapped == cold.mapped)) {
          throw std::runtime_error("bench_service: warm result diverged from cold");
        }
      }
      const std::uint64_t shard_work =
          exact::ShardExecutor::instance().stats().tasks_executed - shard_work_before;
      std::cout << "  " << row.name << ": cold " << cold_t << " ms, warm avg "
                << row_warm / args.repeat << " ms, warm shard tasks " << shard_work << "\n";
      if (args.smoke && shard_work != 0) {
        std::cerr << "bench_service: FAIL — warm hits spawned " << shard_work
                  << " shard tasks on " << row.name << " (expected 0)\n";
        return 1;
      }
    }

    const double cold_med = median(cold_ms);
    const double warm_med = median(warm_ms);
    const double speedup = warm_med > 0.0 ? cold_med / warm_med : 0.0;
    const auto stats = service.stats();
    std::cout << "cold median " << cold_med << " ms | warm median " << warm_med
              << " ms | speedup " << speedup << "x\n"
              << "service: " << stats.requests << " requests, " << stats.hits << " hits, "
              << stats.misses << " misses, " << stats.solves << " solves\n";

    if (args.smoke && speedup < args.min_speedup) {
      std::cerr << "bench_service: FAIL — warm/cold median speedup " << speedup << "x < "
                << args.min_speedup << "x\n";
      return 1;
    }
    const std::uint64_t trace_events =
        obs::TraceRecorder::instance().event_count() - trace_events_before;
    if (args.smoke && trace_events != 0) {
      std::cerr << "bench_service: FAIL — disabled-mode tracing recorded " << trace_events
                << " events (expected 0)\n";
      return 1;
    }
    if (args.smoke) std::cout << "bench_service: smoke OK (trace disabled, 0 events)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
