/// \file sat_smoke_main.cpp
/// SAT regression smoke gate: re-proves the `proven: true` rows of the
/// committed BENCH_table1.json at the committed budget and fails (exit 1)
/// if any of them no longer proves or any proven cost drifts. Proven costs
/// are deterministic (docs/benchmarks.md), so a drift is a correctness
/// event; a lost proof is a solver-performance regression.
///
/// Usage: bench_sat_smoke [--smoke] [--baseline PATH] [--budget-ms N]
///                        [--mode descending|binary|both]
///   --smoke         no-op flag naming the CI mode (kept for readability)
///   --baseline PATH BENCH_table1.json to check against (default:
///                   ./BENCH_table1.json)
///   --budget-ms N   override the per-solve budget (default: the baseline
///                   file's budget_ms)
///   --mode M        which optimisation strategy re-proves the rows:
///                   the descending-bound loop, the incremental
///                   assumption-probe binary search, or both in sequence
///                   (default both — proven costs must agree either way)
///
/// Unlike the bench_* suites this is a plain CLI (no Google-Benchmark
/// dependency) so the quick CI gate can run it from the test build.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/architectures.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "exact/exact_mapper.hpp"
#include "reason/engine.hpp"

namespace {

using namespace qxmap;

struct BaselineRow {
  std::string circuit;
  long long cost = -1;
  bool proven = false;
};

struct Baseline {
  long long budget_ms = 3000;
  std::vector<BaselineRow> rows;
};

/// Pulls `"key": <value>` out of one JSON row object. The baseline file is
/// machine-written by table1 with a fixed layout, so a targeted scan is
/// enough — no general JSON parser needed.
std::string field(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return {};
  std::size_t begin = at + needle.size();
  while (begin < obj.size() && obj[begin] == ' ') ++begin;
  std::size_t end = begin;
  if (obj[begin] == '"') {
    end = obj.find('"', begin + 1);
    return obj.substr(begin + 1, end - begin - 1);
  }
  while (end < obj.size() && obj[end] != ',' && obj[end] != '}') ++end;
  return obj.substr(begin, end - begin);
}

Baseline load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench_sat_smoke: cannot open baseline: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  Baseline b;
  const std::string budget = field(text, "budget_ms");
  if (!budget.empty()) b.budget_ms = std::stoll(budget);

  // Row objects all live inside the "rows" array; scan its {...} groups.
  std::size_t pos = text.find("\"rows\"");
  if (pos == std::string::npos) throw std::runtime_error("bench_sat_smoke: no rows in " + path);
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const std::size_t close = text.find('}', pos);
    if (close == std::string::npos) break;
    const std::string obj = text.substr(pos, close - pos + 1);
    BaselineRow row;
    row.circuit = field(obj, "circuit");
    const std::string cost = field(obj, "cost");
    if (!cost.empty()) row.cost = std::stoll(cost);
    row.proven = field(obj, "proven") == "true";
    if (!row.circuit.empty()) b.rows.push_back(std::move(row));
    pos = close + 1;
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path = "BENCH_table1.json";
  long long budget_ms = -1;
  std::string mode = "both";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") continue;
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--budget-ms" && i + 1 < argc) {
      budget_ms = std::stoll(argv[++i]);
    } else if (arg == "--mode" && i + 1 < argc) {
      mode = argv[++i];
      if (mode != "descending" && mode != "binary" && mode != "both") {
        std::cerr << "bench_sat_smoke: --mode must be descending, binary or both\n";
        return 2;
      }
    } else {
      std::cerr << "bench_sat_smoke: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  Baseline baseline;
  try {
    baseline = load_baseline(baseline_path);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (budget_ms <= 0) budget_ms = baseline.budget_ms;

  std::vector<reason::OptimizationMode> modes;
  if (mode != "binary") modes.push_back(reason::OptimizationMode::DescendingLinear);
  if (mode != "descending") modes.push_back(reason::OptimizationMode::BinarySearch);

  int checked = 0;
  int failed = 0;
  for (const auto opt_mode : modes) {
    exact::ExactOptions opt;
    opt.engine = reason::EngineKind::Cdcl;
    opt.use_subsets = true;
    opt.budget = std::chrono::milliseconds(budget_ms);
    opt.optimization = opt_mode;
    const char* mode_name =
        opt_mode == reason::OptimizationMode::BinarySearch ? "binary" : "descending";
    for (const auto& row : baseline.rows) {
      if (!row.proven) continue;  // budget-bound rows are timing-dependent
      ++checked;
      const Circuit circuit = bench::table1_benchmark(row.circuit).build();
      const auto res = exact::map_exact(circuit, arch::ibm_qx4(), opt);
      const bool proven = res.status == reason::Status::Optimal;
      const auto cost = static_cast<long long>(res.mapped.size());
      const bool ok = proven && cost == row.cost;
      std::cout << (ok ? "  ok   " : "  FAIL ") << row.circuit << " [" << mode_name
                << "]: cost " << cost << " (baseline " << row.cost << "), "
                << (proven ? "proven" : "NOT proven") << ", "
                << static_cast<long long>(res.seconds * 1000.0) << " ms\n";
      if (!ok) ++failed;
    }
  }

  std::cout << "bench_sat_smoke: " << (checked - failed) << "/" << checked
            << " proven baseline rows re-proved at " << budget_ms << " ms (mode " << mode
            << ")\n";
  return failed == 0 ? 0 : 1;
}
