/// Micro-benchmarks for the home-grown CDCL solver substrate: propagation
/// throughput on implication chains, learning on pigeonhole instances, and
/// totalizer construction cost.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sat/solver.hpp"
#include "sat/totalizer.hpp"

namespace {

using namespace qxmap;
using sat::Lit;
using sat::neg;
using sat::pos;

void BM_ImplicationChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<sat::Var> v;
    for (int i = 0; i < n; ++i) v.push_back(s.new_var());
    for (int i = 0; i + 1 < n; ++i) {
      s.add_clause(neg(v[static_cast<std::size_t>(i)]), pos(v[static_cast<std::size_t>(i + 1)]));
    }
    s.add_clause(pos(v[0]));
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_ImplicationChain)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_PigeonholeUnsat(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<sat::Var>> x(static_cast<std::size_t>(holes + 1));
    for (auto& row : x) {
      for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
    }
    for (int p = 0; p <= holes; ++p) {
      std::vector<Lit> clause;
      for (int h = 0; h < holes; ++h) {
        clause.push_back(pos(x[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
      }
      s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 <= holes; ++p1) {
        for (int p2 = p1 + 1; p2 <= holes; ++p2) {
          s.add_clause(neg(x[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
                       neg(x[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]));
        }
      }
    }
    benchmark::DoNotOptimize(s.solve());
    // Engine-room health counters (docs/benchmarks.md): restart cadence,
    // ReduceDB deletions and the average learnt LBD of the last solve.
    const sat::SolverStats& st = s.stats();
    state.counters["conflicts"] = static_cast<double>(st.conflicts);
    state.counters["restarts"] = static_cast<double>(st.restarts);
    state.counters["learnt_del"] = static_cast<double>(st.learnt_deleted);
    state.counters["avg_lbd"] =
        st.learned > 0 ? static_cast<double>(st.lbd_sum) / static_cast<double>(st.learned) : 0.0;
  }
}
BENCHMARK(BM_PigeonholeUnsat)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_RandomThreeSat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int clauses = static_cast<int>(4.0 * n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    sat::Solver s;
    for (int i = 0; i < n; ++i) s.new_var();
    for (int c = 0; c < clauses; ++c) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k) {
        cl.push_back(Lit(static_cast<sat::Var>(rng.next_below(static_cast<std::uint64_t>(n))),
                         rng.next_bool(0.5)));
      }
      s.add_clause(std::move(cl));
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_RandomThreeSat)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_TotalizerConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<Lit> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(pos(s.new_var()));
    benchmark::DoNotOptimize(sat::build_totalizer(s, inputs));
  }
}
BENCHMARK(BM_TotalizerConstruction)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace
