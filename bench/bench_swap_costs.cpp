/// Micro-benchmarks for the swaps(π) machinery (Eq. 5 preprocessing):
/// exhaustive table construction per architecture, sequence reconstruction,
/// and the token-swapping fallback on the large machines.

#include <benchmark/benchmark.h>

#include "arch/architectures.hpp"
#include "arch/swap_costs.hpp"

namespace {

using namespace qxmap;

void BM_TableConstructionQx4(benchmark::State& state) {
  const auto cm = arch::ibm_qx4();
  for (auto _ : state) {
    arch::SwapCostTable table(cm);
    benchmark::DoNotOptimize(table.max_swaps());
  }
}
BENCHMARK(BM_TableConstructionQx4)->Unit(benchmark::kMillisecond);

void BM_TableConstructionLinear(benchmark::State& state) {
  const auto cm = arch::linear(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    arch::SwapCostTable table(cm);
    benchmark::DoNotOptimize(table.max_swaps());
  }
}
BENCHMARK(BM_TableConstructionLinear)->Arg(4)->Arg(5)->Arg(6)->Arg(7)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SwapLookup(benchmark::State& state) {
  const arch::SwapCostTable table(arch::ibm_qx4());
  const auto perms = Permutation::all(5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.swaps(perms[i % perms.size()]));
    ++i;
  }
}
BENCHMARK(BM_SwapLookup);

void BM_SwapSequenceReconstruction(benchmark::State& state) {
  const arch::SwapCostTable table(arch::ibm_qx4());
  const auto perms = Permutation::all(5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.swap_sequence(perms[i % perms.size()]));
    ++i;
  }
}
BENCHMARK(BM_SwapSequenceReconstruction);

void BM_GreedyTokenSwapQx5(benchmark::State& state) {
  const auto cm = arch::ibm_qx5();
  std::vector<int> images(16);
  for (int i = 0; i < 16; ++i) images[static_cast<std::size_t>(i)] = (i + 5) % 16;
  const Permutation pi(images);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::greedy_swap_sequence(cm, pi));
  }
}
BENCHMARK(BM_GreedyTokenSwapQx5);

void BM_GreedyTokenSwapTokyo(benchmark::State& state) {
  const auto cm = arch::ibm_tokyo();
  std::vector<int> images(20);
  for (int i = 0; i < 20; ++i) images[static_cast<std::size_t>(i)] = (i + 7) % 20;
  const Permutation pi(images);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::greedy_swap_sequence(cm, pi));
  }
}
BENCHMARK(BM_GreedyTokenSwapTokyo);

}  // namespace
