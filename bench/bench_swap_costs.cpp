/// Micro-benchmarks for the swaps(π) machinery (Eq. 5 preprocessing):
/// exhaustive table construction per architecture, cached retrieval through
/// SwapCostCache, sequence reconstruction, the token-swapping fallback on
/// the large machines, and repeated map() calls with a warm vs. cold cache.

#include <benchmark/benchmark.h>

#include "api/qxmap.hpp"
#include "arch/architectures.hpp"
#include "arch/swap_cost_cache.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/generators.hpp"

namespace {

using namespace qxmap;

void BM_TableConstructionQx4(benchmark::State& state) {
  const auto cm = arch::ibm_qx4();
  for (auto _ : state) {
    arch::SwapCostTable table(cm);
    benchmark::DoNotOptimize(table.max_swaps());
  }
}
BENCHMARK(BM_TableConstructionQx4)->Unit(benchmark::kMillisecond);

void BM_TableConstructionLinear(benchmark::State& state) {
  const auto cm = arch::linear(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    arch::SwapCostTable table(cm);
    benchmark::DoNotOptimize(table.max_swaps());
  }
}
BENCHMARK(BM_TableConstructionLinear)->Arg(4)->Arg(5)->Arg(6)->Arg(7)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TableCachedRetrievalQx4(benchmark::State& state) {
  // Contrast with BM_TableConstructionQx4: after the first miss, every
  // retrieval is a fingerprint hash lookup instead of a 5!-state BFS.
  arch::SwapCostCache cache(8);
  const auto cm = arch::ibm_qx4();
  benchmark::DoNotOptimize(cache.table(cm));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.table(cm));
  }
}
BENCHMARK(BM_TableCachedRetrievalQx4);

/// Workload isolating the swaps(π) rebuild share of a map() call: a single
/// CNOT over 7 logical qubits on linear(8) makes the solve trivial while
/// each subset instance needs a 7!-state table.
Circuit seven_qubit_single_cnot() {
  Circuit c(7, "bench/cache");
  c.cnot(0, 1);
  return c;
}

MapOptions subset_map_options() {
  MapOptions options;
  options.exact.engine = reason::EngineKind::Cdcl;
  options.exact.use_subsets = true;
  options.exact.num_threads = 1;
  return options;
}

void BM_RepeatedExactMapColdCache(benchmark::State& state) {
  // Every map() call pays the swaps(π) table construction for each subset
  // instance: the cache is cleared between iterations.
  const auto cm = arch::linear(8);
  const auto c = seven_qubit_single_cnot();
  const auto options = subset_map_options();
  for (auto _ : state) {
    arch::SwapCostCache::instance().clear();
    benchmark::DoNotOptimize(map(c, cm, options));
  }
}
BENCHMARK(BM_RepeatedExactMapColdCache)->Unit(benchmark::kMillisecond);

void BM_RepeatedExactMapWarmCache(benchmark::State& state) {
  // Identical workload with the process-wide cache left warm: the swaps(π)
  // tables of the induced subset maps are rebuilt zero times per call.
  const auto cm = arch::linear(8);
  const auto c = seven_qubit_single_cnot();
  const auto options = subset_map_options();
  benchmark::DoNotOptimize(map(c, cm, options));  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(map(c, cm, options));
  }
}
BENCHMARK(BM_RepeatedExactMapWarmCache)->Unit(benchmark::kMillisecond);

void BM_SwapLookup(benchmark::State& state) {
  const arch::SwapCostTable table(arch::ibm_qx4());
  const auto perms = Permutation::all(5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.swaps(perms[i % perms.size()]));
    ++i;
  }
}
BENCHMARK(BM_SwapLookup);

void BM_SwapSequenceReconstruction(benchmark::State& state) {
  const arch::SwapCostTable table(arch::ibm_qx4());
  const auto perms = Permutation::all(5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.swap_sequence(perms[i % perms.size()]));
    ++i;
  }
}
BENCHMARK(BM_SwapSequenceReconstruction);

void BM_GreedyTokenSwapQx5(benchmark::State& state) {
  const auto cm = arch::ibm_qx5();
  std::vector<int> images(16);
  for (int i = 0; i < 16; ++i) images[static_cast<std::size_t>(i)] = (i + 5) % 16;
  const Permutation pi(images);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::greedy_swap_sequence(cm, pi));
  }
}
BENCHMARK(BM_GreedyTokenSwapQx5);

void BM_GreedyTokenSwapTokyo(benchmark::State& state) {
  const auto cm = arch::ibm_tokyo();
  std::vector<int> images(20);
  for (int i = 0; i < 20; ++i) images[static_cast<std::size_t>(i)] = (i + 7) % 20;
  const Permutation pi(images);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::greedy_swap_sequence(cm, pi));
  }
}
BENCHMARK(BM_GreedyTokenSwapTokyo);

}  // namespace
