/// Scaling behaviour of the exact method with circuit size — the
/// observation motivating Sec. 4's performance improvements: runtime grows
/// steeply with the number of CNOTs because the search space is
/// 2^(n·m·|G|). Sweeps #CNOTs for the unrestricted method and for the
/// strategy-restricted variants, plus the DP certifier as a yardstick.

#include <benchmark/benchmark.h>

#include "arch/architectures.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/generators.hpp"
#include "exact/exact_mapper.hpp"
#include "exact/reference_search.hpp"
#include "heuristic/layer_weight_mapper.hpp"

namespace {

using namespace qxmap;

void BM_ExactScaling(benchmark::State& state) {
  const int num_cnots = static_cast<int>(state.range(0));
  const Circuit circuit = bench::random_circuit(4, 0, num_cnots, 7, "scaling");
  exact::ExactOptions opt;
  opt.engine = reason::EngineKind::Z3;
  opt.use_subsets = true;
  opt.budget = std::chrono::milliseconds(60000);
  opt.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::map_exact(circuit, arch::ibm_qx4(), opt));
  }
}
BENCHMARK(BM_ExactScaling)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ExactScalingOddGates(benchmark::State& state) {
  const int num_cnots = static_cast<int>(state.range(0));
  const Circuit circuit = bench::random_circuit(4, 0, num_cnots, 7, "scaling");
  exact::ExactOptions opt;
  opt.engine = reason::EngineKind::Z3;
  opt.strategy = exact::PermutationStrategy::OddGates;
  opt.use_subsets = true;
  opt.budget = std::chrono::milliseconds(60000);
  opt.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::map_exact(circuit, arch::ibm_qx4(), opt));
  }
}
BENCHMARK(BM_ExactScalingOddGates)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ReferenceDpScaling(benchmark::State& state) {
  const int num_cnots = static_cast<int>(state.range(0));
  const Circuit circuit = bench::random_circuit(4, 0, num_cnots, 7, "scaling");
  std::vector<Gate> cnots;
  for (const auto& g : circuit) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  std::vector<std::size_t> points;
  for (std::size_t k = 1; k < cnots.size(); ++k) points.push_back(k);
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  exact::CostModel costs;
  costs.swap_cost = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact::minimal_cost_reference(cnots, 4, cm, table, points, costs));
  }
}
BENCHMARK(BM_ReferenceDpScaling)->Arg(2)->Arg(6)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

// The scenario axis the exact method cannot reach: SU(4) stress circuits on
// the heavy-hex built-ins, routed by the layer-weight heuristic. Arg selects
// the architecture (27/65/127 qubits); depth is fixed at 4 SU(4) layers so
// the CNOT count scales linearly with the qubit count.
void BM_LayerWeightHeavyHex(benchmark::State& state) {
  const arch::CouplingMap cm = [&] {
    switch (state.range(0)) {
      case 27: return arch::ibm_hex27();
      case 65: return arch::ibm_hex65();
      default: return arch::ibm_hex127();
    }
  }();
  const Circuit circuit =
      bench::su4_random_circuit(cm.num_physical(), 4, 7, "su4_" + cm.name());
  heuristic::LayerWeightOptions opt;
  opt.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic::map_layer_weight(circuit, cm, opt));
  }
}
BENCHMARK(BM_LayerWeightHeavyHex)->Arg(27)->Arg(65)->Arg(127)
    ->Unit(benchmark::kMillisecond);

}  // namespace
