/// Ablation bench for the reasoning-engine choice (Sec. 3.1): the paper's
/// Z3 backend vs. this library's own CDCL + descending-bound optimiser on
/// identical symbolic instances.

#include <benchmark/benchmark.h>

#include "arch/architectures.hpp"
#include "bench_circuits/generators.hpp"
#include "common/rng.hpp"
#include "exact/exact_mapper.hpp"
#include "reason/cdcl_engine.hpp"

namespace {

using namespace qxmap;

void BM_Engine(benchmark::State& state) {
  const auto kind =
      state.range(0) == 0 ? reason::EngineKind::Z3 : reason::EngineKind::Cdcl;
  const int num_cnots = static_cast<int>(state.range(1));
  const Circuit circuit = bench::random_circuit(4, 0, num_cnots, 42, "engine-bench");
  exact::ExactOptions opt;
  opt.engine = kind;
  opt.use_subsets = true;
  opt.budget = std::chrono::milliseconds(30000);
  opt.verify = false;
  long long cost = -1;
  for (auto _ : state) {
    const auto res = exact::map_exact(circuit, arch::ibm_qx4(), opt);
    cost = res.cost_f;
    benchmark::DoNotOptimize(res);
  }
  state.counters["F"] = static_cast<double>(cost);
  state.SetLabel(std::string(kind == reason::EngineKind::Z3 ? "z3" : "cdcl") + "/cx" +
                 std::to_string(num_cnots));
}
BENCHMARK(BM_Engine)
    ->ArgsProduct({{0, 1}, {4, 6, 8}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_CdclOptimizationMode(benchmark::State& state) {
  // Sec. 3.3 ablation on raw weighted instances: descending-linear
  // tightening vs. binary search with fresh probe solvers.
  const auto mode = state.range(0) == 0 ? reason::OptimizationMode::DescendingLinear
                                        : reason::OptimizationMode::BinarySearch;
  const int num_vars = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    reason::CdclEngine engine;
    engine.set_mode(mode);
    for (int v = 0; v < num_vars; ++v) engine.new_bool();
    for (int c = 0; c < 2 * num_vars; ++c) {
      std::vector<int> clause;
      for (int k = 0; k < 3; ++k) {
        const int var = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_vars))) + 1;
        clause.push_back(rng.next_bool(0.5) ? var : -var);
      }
      engine.add_clause(clause);
    }
    for (int v = 0; v < num_vars; ++v) {
      if (rng.next_bool(0.5)) engine.add_cost(v, 4 + (v % 4) * 7);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.minimize(std::chrono::milliseconds(30000)));
    state.PauseTiming();
    // New EngineStats counters (docs/benchmarks.md) from the last minimize.
    const reason::EngineStats& es = engine.stats();
    state.counters["restarts"] = static_cast<double>(es.restarts);
    state.counters["learnt_del"] = static_cast<double>(es.learnts_deleted);
    state.counters["avg_lbd"] = es.avg_lbd;
    state.ResumeTiming();
  }
  state.SetLabel(mode == reason::OptimizationMode::DescendingLinear ? "descending" : "binary");
}
BENCHMARK(BM_CdclOptimizationMode)
    ->ArgsProduct({{0, 1}, {30, 60}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
