/// Ablation bench for the Sec. 4.2 permutation-point strategies: runtime
/// and result cost per strategy on representative Table-1 workloads. The
/// paper's qualitative finding: runtime correlates with |G'|; triangle is
/// fastest but least accurate, disjoint preserves the minimum.

#include <benchmark/benchmark.h>

#include "arch/architectures.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "exact/exact_mapper.hpp"

namespace {

using namespace qxmap;

const char* kBenchmarks[] = {"ex-1_166", "ham3_102", "4gt11_84", "4mod5-v0_20"};

exact::PermutationStrategy strategy_of(int idx) {
  switch (idx) {
    case 0: return exact::PermutationStrategy::All;
    case 1: return exact::PermutationStrategy::DisjointQubits;
    case 2: return exact::PermutationStrategy::OddGates;
    default: return exact::PermutationStrategy::QubitTriangle;
  }
}

void BM_Strategy(benchmark::State& state) {
  const auto& b = bench::table1_benchmark(kBenchmarks[state.range(0)]);
  const Circuit circuit = b.build();
  exact::ExactOptions opt;
  opt.engine = reason::EngineKind::Z3;
  opt.strategy = strategy_of(static_cast<int>(state.range(1)));
  opt.use_subsets = true;
  opt.budget = std::chrono::milliseconds(20000);
  opt.verify = false;
  long long cost = -1;
  int points = 0;
  for (auto _ : state) {
    const auto res = exact::map_exact(circuit, arch::ibm_qx4(), opt);
    cost = res.cost_f;
    points = res.permutation_points;
    benchmark::DoNotOptimize(res);
  }
  state.counters["F"] = static_cast<double>(cost);
  state.counters["points"] = points;
  state.SetLabel(std::string(kBenchmarks[state.range(0)]) + "/" +
                 exact::to_string(opt.strategy));
}
BENCHMARK(BM_Strategy)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
